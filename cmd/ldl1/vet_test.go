package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldl1"
	"ldl1/internal/analyze"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := vetMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVetMain(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ldl")
	bad := filepath.Join(dir, "sub", "bad.ldl")
	warn := filepath.Join(dir, "warn.ldl")
	embedded := filepath.Join(dir, "prog.go")
	writeFile(t, good, "d(1).\np(X) <- d(X).\n")
	writeFile(t, bad, "big(X) <- d(Y), Y < X.\nd(1).\n")
	writeFile(t, warn, "d(1).\ne(2).\npair(X, Y) <- d(X), e(Y).\n")
	writeFile(t, embedded, "package p\n\nconst src = `\nf(Z, a).\n`\n")

	if code, out, _ := runVet(t, good); code != 0 || out != "" {
		t.Errorf("clean file: exit %d, output %q", code, out)
	}

	// Directory walk finds the nested unsafe file; errors exit 1.
	code, out, _ := runVet(t, dir+"/...")
	if code != 1 {
		t.Errorf("directory with errors: exit %d", code)
	}
	if !strings.Contains(out, "LDL001") || !strings.Contains(out, "bad.ldl:1:5") {
		t.Errorf("missing positioned diagnostic:\n%s", out)
	}
	// The embedded Go program's ground-fact violation surfaces too, with
	// Go-file line numbers (fact on file line 4).
	if !strings.Contains(out, "prog.go:4:3") || !strings.Contains(out, "LDL004") {
		t.Errorf("embedded Go diagnostics missing:\n%s", out)
	}

	// Warnings alone exit 0, unless -strict.
	if code, _, _ := runVet(t, warn); code != 0 {
		t.Errorf("warnings only: exit %d, want 0", code)
	}
	if code, _, _ := runVet(t, "-strict", warn); code != 1 {
		t.Errorf("warnings under -strict: exit %d, want 1", code)
	}

	// -json output round-trips through encoding/json.
	code, out, _ = runVet(t, "-json", bad)
	if code != 1 {
		t.Errorf("-json exit %d, want 1", code)
	}
	var ds []analyze.Diagnostic
	if err := json.Unmarshal([]byte(out), &ds); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(ds) == 0 || ds[0].Code != "LDL001" || ds[0].Severity != analyze.Error {
		t.Errorf("unexpected JSON diagnostics: %+v", ds)
	}
	reEncoded, err := json.Marshal(ds)
	if err != nil || !strings.Contains(string(reEncoded), `"severity":"error"`) {
		t.Errorf("re-encoded JSON lost severity: %v %s", err, reEncoded)
	}

	// A clean tree under -json prints an empty array.
	if _, out, _ := runVet(t, "-json", good); strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output %q, want []", out)
	}

	// Missing paths are usage errors: exit 2.
	if code, _, errOut := runVet(t, filepath.Join(dir, "nope.ldl")); code != 2 || errOut == "" {
		t.Errorf("missing file: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := runVet(t); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
}

func TestVetSigs(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "anc.ldl")
	writeFile(t, file, "parent(abe, bob).\nage(abe, 70).\nanc(X, Y) <- parent(X, Y).\nelders(X, <A>) <- age(X, A).\n")

	// Text form: the signature block follows the (empty) diagnostics.
	code, out, _ := runVet(t, "-sigs", file)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, want := range []string{
		"inferred signatures",
		"anc/2: (atom, atom)",
		"elders/2: (atom, set(int))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-sigs output lacks %q:\n%s", want, out)
		}
	}

	// -json -sigs: envelope with diagnostics and per-file signatures.
	_, out, _ = runVet(t, "-json", "-sigs", file)
	var env struct {
		Diagnostics []analyze.Diagnostic `json:"diagnostics"`
		Signatures  []struct {
			File       string `json:"file"`
			Signatures []struct {
				Pred  string   `json:"pred"`
				Arity int      `json:"arity"`
				Args  []string `json:"args"`
			} `json:"signatures"`
		} `json:"signatures"`
	}
	if err := json.Unmarshal([]byte(out), &env); err != nil {
		t.Fatalf("envelope is not JSON: %v\n%s", err, out)
	}
	if len(env.Signatures) != 1 || env.Signatures[0].File != file {
		t.Fatalf("envelope signatures: %+v", env.Signatures)
	}
	found := false
	for _, s := range env.Signatures[0].Signatures {
		if s.Pred == "age" && s.Arity == 2 && len(s.Args) == 2 && s.Args[1] == "int" {
			found = true
		}
	}
	if !found {
		t.Errorf("age/2 signature missing: %s", out)
	}

	// Bare -json keeps the plain-array shape.
	_, out, _ = runVet(t, "-json", file)
	var plain []analyze.Diagnostic
	if err := json.Unmarshal([]byte(out), &plain); err != nil {
		t.Errorf("bare -json no longer a plain array: %v\n%s", err, out)
	}
}

// TestVetAcceptance pins the ISSUE acceptance scenario: a grouping/negation
// cycle reports the witness cycle with the file:line:col of each inducing
// rule and exits nonzero.
func TestVetAcceptance(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "cycle.ldl")
	writeFile(t, file, "r(1).\np(X, <Y>) <- q(X, Y).\nq(X, Y) <- p(X, Y), not r(Y).\n")
	code, out, _ := runVet(t, file)
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	for _, want := range []string{
		"p -> q -> p",
		"LDL006",
		file + ":2:1: error:",
		file + ":2:1: p > q",
		file + ":3:1: q ≥ p",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestReplCheck: the REPL's check command prints the engine's diagnostics
// (uncolored for a non-terminal writer) and malformed queries keep the
// session alive.
func TestReplCheck(t *testing.T) {
	eng, err := ldl1.New("d(1).\ne(2).\npair(X, Y) <- d(X), e(Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	in := strings.NewReader("?- p(\n:check\n:quit\n")
	if err := repl(eng, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "error:") {
		t.Errorf("malformed query did not report an error:\n%s", s)
	}
	if !strings.Contains(s, "LDL108") {
		t.Errorf("check did not print diagnostics:\n%s", s)
	}
	if strings.Contains(s, "\x1b[") {
		t.Errorf("ANSI colors written to a non-terminal:\n%s", s)
	}

	clean, err := ldl1.New("d(1).\np(X) <- d(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := repl(clean, strings.NewReader("check\n:quit\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok: no diagnostics") {
		t.Errorf("clean engine check output:\n%s", out.String())
	}
	// :check also surfaces the inferred signatures.
	if !strings.Contains(out.String(), "p/1: (int)") {
		t.Errorf("check did not print inferred signatures:\n%s", out.String())
	}
}
