// Command ldl1 runs LDL1 programs: it loads rule/fact files, evaluates the
// standard minimal model bottom-up (Theorem 1 of the PODS'87 LDL1 paper),
// and answers queries — optionally through the §6 magic-sets compiler.
//
// Usage:
//
//	ldl1 [flags] file.ldl...          # run programs; answer embedded ?- queries
//	ldl1 [flags] -q 'anc(a, W)' file.ldl
//	ldl1 vet [-json] [-strict] path...  # static analysis only; see vet.go
//
// Flags:
//
//	-q query      answer this query (may repeat the ?- prefix)
//	-magic        compile the query with Generalized Magic Sets (§6)
//	-naive        use naive instead of semi-naive fixpoint evaluation
//	-model        print the full minimal model
//	-strata       print the layering (§3.1)
//	-explain      with -q: print the adorned and magic-rewritten programs
//	-stats        print evaluation counters
//	-timeout d    abort any evaluation that runs longer than d (e.g. 5s)
//	-compile      print the program after LDL1.5 → LDL1 expansion and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ldl1"
	"ldl1/internal/parser"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(vetMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldl1:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		query       = flag.String("q", "", "query to answer")
		magic       = flag.Bool("magic", false, "use magic-sets compilation for the query")
		naive       = flag.Bool("naive", false, "use naive fixpoint evaluation")
		model       = flag.Bool("model", false, "print the full minimal model")
		strata      = flag.Bool("strata", false, "print the layering")
		explain     = flag.Bool("explain", false, "print adorned and rewritten programs for -q")
		stats       = flag.Bool("stats", false, "print evaluation counters")
		compile     = flag.Bool("compile", false, "print the compiled (core LDL1) program and exit")
		interactive = flag.Bool("i", false, "interactive query loop after loading files")
		timeout     = flag.Duration("timeout", 0, "per-evaluation deadline, e.g. 5s (0 = none)")
	)
	flag.Parse()

	src, err := readSources(flag.Args())
	if err != nil {
		return err
	}
	unit, err := parser.Parse(src)
	if err != nil {
		return err
	}

	var opts []ldl1.Option
	if *naive {
		opts = append(opts, ldl1.WithStrategy(ldl1.Naive))
	}
	if *magic {
		opts = append(opts, ldl1.WithMagic(true))
	}
	var st ldl1.Stats
	if *stats {
		opts = append(opts, ldl1.WithStats(&st))
	}
	if *timeout > 0 {
		opts = append(opts, ldl1.WithDeadline(*timeout))
	}

	eng, err := ldl1.NewFromAST(unit.Program, opts...)
	if err != nil {
		return err
	}

	if *compile {
		fmt.Print(eng.Program())
		return nil
	}
	if *interactive {
		return repl(eng, os.Stdin, os.Stdout)
	}
	if *strata {
		printStrata(eng)
	}

	queries := unit.Queries
	if *query != "" {
		q, err := parser.ParseQuery(*query)
		if err != nil {
			return err
		}
		queries = append(queries, q)
	}

	if *explain {
		if len(queries) == 0 {
			return fmt.Errorf("-explain needs a query")
		}
		for _, q := range queries {
			adorned, rewritten, plan, err := eng.ExplainQuery(strings.TrimSuffix(strings.TrimPrefix(q.String(), "?- "), "."))
			if err != nil {
				return err
			}
			fmt.Printf("%% adorned program for %s\n%s\n%% magic-rewritten program\n%s\n%% join plan\n%s", q, adorned, rewritten, plan)
		}
		return nil
	}

	for _, q := range queries {
		qs := strings.TrimSuffix(strings.TrimPrefix(q.String(), "?- "), ".")
		ans, err := eng.Query(qs)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n%s\n", q, ans)
	}

	if *model || len(queries) == 0 {
		m, err := eng.Run()
		if err != nil {
			return err
		}
		fmt.Println(m)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "iterations=%d derived=%d firings=%d\n", st.Iterations, st.Derived, st.Firings)
	}
	return nil
}

func readSources(paths []string) (string, error) {
	if len(paths) == 0 {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	var sb strings.Builder
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		sb.Write(data)
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

func printStrata(eng *ldl1.Engine) {
	st := eng.Strata()
	byLayer := map[int][]string{}
	max := 0
	for pred, s := range st {
		byLayer[s] = append(byLayer[s], pred)
		if s > max {
			max = s
		}
	}
	for i := 0; i <= max; i++ {
		preds := append([]string(nil), byLayer[i]...)
		sort.Strings(preds)
		fmt.Printf("layer %d: %s\n", i, strings.Join(preds, " "))
	}
}
