package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ldl1"
)

// repl runs an interactive query loop against the engine.  Lines are
// queries ("ancestor(abe, W)" or "?- ancestor(abe, W)."); colon commands
// provide extras:
//
//	:assert f(a, b).   add an extensional fact
//	:explain f(a, b)   print a proof tree for a fact in the model
//	:model             print the whole minimal model
//	:strata            print the layering
//	:help              this text
//	:quit              leave
func repl(eng *ldl1.Engine, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "LDL1 interactive — :help for commands, :quit to leave")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "?- ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case line == ":quit" || line == ":q":
			return nil
		case line == ":help":
			fmt.Fprintln(out, ":assert <fact>.  :explain <fact>  :model  :strata  :quit")
		case line == ":model":
			m, err := eng.Run()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, m)
		case line == ":strata":
			printStrata(eng)
		case strings.HasPrefix(line, ":assert "):
			src := strings.TrimPrefix(line, ":assert ")
			if !strings.HasSuffix(src, ".") {
				src += "."
			}
			if err := eng.AddFacts(src); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case strings.HasPrefix(line, ":explain "):
			fact := strings.TrimSuffix(strings.TrimPrefix(line, ":explain "), ".")
			why, err := eng.Explain(fact)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, why)
		default:
			q := strings.TrimSuffix(strings.TrimPrefix(line, "?-"), ".")
			ans, err := eng.Query(strings.TrimSpace(q))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, ans)
		}
	}
}
