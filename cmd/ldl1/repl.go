package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"ldl1"
	"ldl1/internal/lderr"
	"ldl1/internal/parser"
)

// parseExecArgs parses the comma-separated constants of an :exec line by
// wrapping them in a dummy literal, so commas nested inside compound terms
// and sets parse correctly.
func parseExecArgs(s string) ([]ldl1.Term, error) {
	if s == "" {
		return nil, nil
	}
	q, err := parser.ParseQuery("exec(" + s + ")")
	if err != nil {
		return nil, fmt.Errorf("bad :exec arguments: %w", err)
	}
	lit := q.Body[0]
	out := make([]ldl1.Term, len(lit.Args))
	for i, a := range lit.Args {
		out[i] = a
	}
	return out, nil
}

// repl runs an interactive query loop against the engine.  Lines are
// queries ("ancestor(abe, W)" or "?- ancestor(abe, W)."); assert/retract
// apply incremental update transactions to a materialized view of the
// model; colon commands provide extras:
//
//	assert f(a, b).    insert extensional facts, update the model in place
//	retract f(a, b).   remove extensional facts, update the model in place
//	:assert f(a, b).   add an extensional fact (full re-evaluation on query)
//	:explain f(a, b)   print a proof tree for a fact in the model
//	:prepare q(a, X)   compile a query once for repeated execution
//	:exec b, c         run the prepared query with new constants (no args
//	                   re-runs the original ones)
//	:model             print the whole minimal model
//	:strata            print the layering
//	:check             run the static analyzer over the loaded program
//	:help              this text
//	:quit              leave
//
// Ctrl-C cancels the evaluation in flight — the model rolls back to its
// pre-operation state — and returns to the prompt instead of killing the
// process.
func repl(eng *ldl1.Engine, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "LDL1 interactive — :help for commands, :quit to leave (Ctrl-C interrupts a running query)")
	sc := bufio.NewScanner(in)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	// interruptible runs one evaluation under a context that Ctrl-C
	// cancels.  A signal arriving at the prompt (no evaluation in flight)
	// is drained first so it cannot cancel the next operation spuriously.
	interruptible := func(fn func(ctx context.Context) error) error {
		select {
		case <-sig:
		default:
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-sig:
				cancel()
			case <-done:
			}
		}()
		return fn(ctx)
	}
	report := func(err error) {
		if errors.Is(err, lderr.Canceled) {
			fmt.Fprintln(out, "interrupted")
			return
		}
		fmt.Fprintln(out, "error:", err)
	}

	// The materialized view is built on first assert/retract; afterwards
	// queries and :model read its incrementally maintained snapshot.
	var mat *ldl1.Materialized
	// The current :prepare handle, run by :exec.
	var prep *ldl1.PreparedQuery
	materialize := func() (*ldl1.Materialized, error) {
		if mat == nil {
			m, err := eng.Materialize()
			if err != nil {
				return nil, err
			}
			mat = m
		}
		return mat, nil
	}
	update := func(src string, retract bool) {
		if !strings.HasSuffix(src, ".") {
			src += "."
		}
		var res ldl1.UpdateResult
		err := interruptible(func(ctx context.Context) error {
			m, err := materialize()
			if err != nil {
				return err
			}
			if retract {
				res, err = m.RetractCtx(ctx, src)
			} else {
				res, err = m.AssertCtx(ctx, src)
			}
			return err
		})
		if err != nil {
			report(err)
			return
		}
		fmt.Fprintf(out, "model: +%d -%d facts\n", res.Inserted, res.Deleted)
	}
	for {
		fmt.Fprint(out, "?- ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case line == ":quit" || line == ":q":
			return nil
		case line == ":help":
			fmt.Fprintln(out, "assert <fact>.  retract <fact>.  :assert <fact>.  :explain <fact>  :prepare <query>  :exec <consts>  :model  :strata  :check  :quit")
		case line == ":check" || line == "check":
			ds := eng.Vet()
			if len(ds) == 0 {
				fmt.Fprintln(out, "ok: no diagnostics")
			} else {
				color := isTerminal(out)
				for _, d := range ds {
					fmt.Fprintln(out, renderDiag(d, color))
					for _, rel := range d.Related {
						fmt.Fprintf(out, "\t%s: %s\n", rel.Pos, rel.Message)
					}
				}
			}
			if sigs := eng.Signatures(); len(sigs) > 0 {
				fmt.Fprintln(out, "inferred signatures:")
				for _, s := range sigs {
					fmt.Fprintf(out, "  %s/%d: (%s)\n", s.Pred, s.Arity, strings.Join(s.Args, ", "))
				}
			}
		case line == ":model":
			if mat != nil {
				fmt.Fprintln(out, mat.Model())
				continue
			}
			var m *ldl1.Model
			err := interruptible(func(ctx context.Context) error {
				var err error
				m, err = eng.RunCtx(ctx)
				return err
			})
			if err != nil {
				report(err)
				continue
			}
			fmt.Fprintln(out, m)
		case line == ":strata":
			printStrata(eng)
		case strings.HasPrefix(line, "assert "):
			update(strings.TrimPrefix(line, "assert "), false)
		case strings.HasPrefix(line, "retract "):
			update(strings.TrimPrefix(line, "retract "), true)
		case strings.HasPrefix(line, ":assert "):
			src := strings.TrimPrefix(line, ":assert ")
			if !strings.HasSuffix(src, ".") {
				src += "."
			}
			if err := eng.AddFacts(src); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case strings.HasPrefix(line, ":prepare "):
			q := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, ":prepare "), "."))
			p, err := eng.Prepare(q)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			prep = p
			fmt.Fprintf(out, "prepared: %s (%d parameter(s); run with :exec)\n", q, p.NumArgs())
		case line == ":exec" || strings.HasPrefix(line, ":exec "):
			if prep == nil {
				fmt.Fprintln(out, "error: no prepared query; use :prepare first")
				continue
			}
			args, err := parseExecArgs(strings.TrimSpace(strings.TrimPrefix(line, ":exec")))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			var ans *ldl1.Answers
			err = interruptible(func(ctx context.Context) error {
				var err error
				ans, err = prep.ExecCtx(ctx, args...)
				return err
			})
			if err != nil {
				report(err)
				continue
			}
			fmt.Fprintln(out, ans)
		case strings.HasPrefix(line, ":explain "):
			fact := strings.TrimSuffix(strings.TrimPrefix(line, ":explain "), ".")
			why, err := eng.Explain(fact)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, why)
		default:
			q := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "?-"), "."))
			var ans *ldl1.Answers
			err := interruptible(func(ctx context.Context) error {
				var err error
				if mat != nil {
					ans, err = mat.QueryCtx(ctx, q)
				} else {
					ans, err = eng.QueryCtx(ctx, q)
				}
				return err
			})
			if err != nil {
				report(err)
				continue
			}
			fmt.Fprintln(out, ans)
		}
	}
}
