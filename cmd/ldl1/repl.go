package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ldl1"
)

// repl runs an interactive query loop against the engine.  Lines are
// queries ("ancestor(abe, W)" or "?- ancestor(abe, W)."); assert/retract
// apply incremental update transactions to a materialized view of the
// model; colon commands provide extras:
//
//	assert f(a, b).    insert extensional facts, update the model in place
//	retract f(a, b).   remove extensional facts, update the model in place
//	:assert f(a, b).   add an extensional fact (full re-evaluation on query)
//	:explain f(a, b)   print a proof tree for a fact in the model
//	:model             print the whole minimal model
//	:strata            print the layering
//	:help              this text
//	:quit              leave
func repl(eng *ldl1.Engine, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "LDL1 interactive — :help for commands, :quit to leave")
	sc := bufio.NewScanner(in)
	// The materialized view is built on first assert/retract; afterwards
	// queries and :model read its incrementally maintained snapshot.
	var mat *ldl1.Materialized
	materialize := func() (*ldl1.Materialized, error) {
		if mat == nil {
			m, err := eng.Materialize()
			if err != nil {
				return nil, err
			}
			mat = m
		}
		return mat, nil
	}
	update := func(src string, retract bool) {
		if !strings.HasSuffix(src, ".") {
			src += "."
		}
		m, err := materialize()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		var res ldl1.UpdateResult
		if retract {
			res, err = m.Retract(src)
		} else {
			res, err = m.Assert(src)
		}
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintf(out, "model: +%d -%d facts\n", res.Inserted, res.Deleted)
	}
	for {
		fmt.Fprint(out, "?- ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case line == ":quit" || line == ":q":
			return nil
		case line == ":help":
			fmt.Fprintln(out, "assert <fact>.  retract <fact>.  :assert <fact>.  :explain <fact>  :model  :strata  :quit")
		case line == ":model":
			if mat != nil {
				fmt.Fprintln(out, mat.Model())
				continue
			}
			m, err := eng.Run()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, m)
		case line == ":strata":
			printStrata(eng)
		case strings.HasPrefix(line, "assert "):
			update(strings.TrimPrefix(line, "assert "), false)
		case strings.HasPrefix(line, "retract "):
			update(strings.TrimPrefix(line, "retract "), true)
		case strings.HasPrefix(line, ":assert "):
			src := strings.TrimPrefix(line, ":assert ")
			if !strings.HasSuffix(src, ".") {
				src += "."
			}
			if err := eng.AddFacts(src); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case strings.HasPrefix(line, ":explain "):
			fact := strings.TrimSuffix(strings.TrimPrefix(line, ":explain "), ".")
			why, err := eng.Explain(fact)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, why)
		default:
			q := strings.TrimSuffix(strings.TrimPrefix(line, "?-"), ".")
			if mat != nil {
				ans, err := mat.Query(strings.TrimSpace(q))
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					continue
				}
				fmt.Fprintln(out, ans)
				continue
			}
			ans, err := eng.Query(strings.TrimSpace(q))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, ans)
		}
	}
}
