package main

// ldl1 vet — the static analyzer as a subcommand.
//
//	ldl1 vet [-json] [-strict] [-sigs] path...
//
// A path may be an .ldl file, a Go file (raw string literals that parse as
// LDL1 are extracted and analyzed in place, positions pointing into the Go
// file), a directory, or a Go-style "dir/..." pattern; directories are
// walked recursively for *.ldl and *.go.  Diagnostics go to stdout, one
// per line, "file:line:col: severity: message [LDL0xx]".  -sigs also
// prints the inferred per-predicate argument signatures of each .ldl file
// (with -json, output becomes a {"diagnostics", "signatures"} envelope;
// bare -json stays a plain diagnostic array).  Exit status: 0 clean, 1
// when any error-severity diagnostic was reported (-strict: when anything
// at all was reported), 2 on usage or I/O problems.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ldl1/internal/analyze"
	"ldl1/internal/analyze/types"
	"ldl1/internal/parser"
)

func vetMain(args []string, stdout, stderr io.Writer) int {
	fset := flag.NewFlagSet("vet", flag.ExitOnError)
	jsonOut := fset.Bool("json", false, "emit diagnostics as a JSON array")
	strict := fset.Bool("strict", false, "exit 1 on warnings too, not only errors")
	sigs := fset.Bool("sigs", false, "also print inferred predicate signatures (.ldl files)")
	fset.SetOutput(stderr)
	fset.Usage = func() {
		fmt.Fprintln(stderr, "usage: ldl1 vet [-json] [-strict] [-sigs] file.ldl|file.go|dir|dir/... ...")
		fset.PrintDefaults()
	}
	fset.Parse(args)
	if fset.NArg() == 0 {
		fset.Usage()
		return 2
	}

	files, err := expandVetPaths(fset.Args())
	if err != nil {
		fmt.Fprintln(stderr, "ldl1 vet:", err)
		return 2
	}

	// fileSigs is one .ldl file's inferred signature block under -sigs.
	type fileSigs struct {
		File       string          `json:"file"`
		Signatures []types.PredSig `json:"signatures"`
	}
	var diags []analyze.Diagnostic
	var sigOut []fileSigs
	broken := false
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "ldl1 vet:", err)
			broken = true
			continue
		}
		if strings.HasSuffix(file, ".go") {
			ds, err := analyze.GoSource(file, data, analyze.Options{File: file})
			if err != nil {
				fmt.Fprintf(stderr, "ldl1 vet: %s: %v\n", file, err)
				broken = true
				continue
			}
			diags = append(diags, ds...)
			continue
		}
		diags = append(diags, analyze.Source(string(data), analyze.Options{File: file})...)
		if *sigs {
			if unit, err := parser.Parse(string(data)); err == nil {
				sigOut = append(sigOut, fileSigs{
					File:       file,
					Signatures: analyze.Signatures(unit.Program, analyze.Options{File: file}),
				})
			}
		}
	}

	if *jsonOut {
		if diags == nil {
			diags = []analyze.Diagnostic{}
		}
		var payload any = diags
		if *sigs {
			// Envelope form: bare -json keeps its established plain-array
			// shape for existing consumers.
			if sigOut == nil {
				sigOut = []fileSigs{}
			}
			payload = map[string]any{"diagnostics": diags, "signatures": sigOut}
		}
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "ldl1 vet:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprint(stdout, analyze.Format(diags))
		if *sigs {
			for _, fs := range sigOut {
				if len(fs.Signatures) == 0 {
					continue
				}
				fmt.Fprintf(stdout, "%s: inferred signatures\n", fs.File)
				for _, s := range fs.Signatures {
					fmt.Fprintf(stdout, "  %s/%d: (%s)\n", s.Pred, s.Arity, strings.Join(s.Args, ", "))
				}
			}
		}
	}

	switch {
	case broken:
		return 2
	case analyze.ErrorCount(diags) > 0, *strict && len(diags) > 0:
		return 1
	}
	return 0
}

// expandVetPaths resolves files, directories, and "dir/..." patterns into
// the list of .ldl and .go files to analyze, in deterministic order.
func expandVetPaths(paths []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(f string) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, p := range paths {
		p = strings.TrimSuffix(p, "/...")
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			if strings.HasSuffix(path, ".ldl") || strings.HasSuffix(path, ".go") {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// isTerminal reports whether w writes to an interactive terminal; the REPL
// colorizes severities only then.
func isTerminal(w any) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// renderDiag is Diagnostic.String with an optionally colorized severity.
func renderDiag(d analyze.Diagnostic, color bool) string {
	s := d.String()
	if !color {
		return s
	}
	switch d.Severity {
	case analyze.Error:
		return strings.Replace(s, ": error: ", ": \x1b[31merror\x1b[0m: ", 1)
	default:
		return strings.Replace(s, ": warning: ", ": \x1b[33mwarning\x1b[0m: ", 1)
	}
}
