package main

// ldl1 vet — the static analyzer as a subcommand.
//
//	ldl1 vet [-json] [-strict] path...
//
// A path may be an .ldl file, a Go file (raw string literals that parse as
// LDL1 are extracted and analyzed in place, positions pointing into the Go
// file), a directory, or a Go-style "dir/..." pattern; directories are
// walked recursively for *.ldl and *.go.  Diagnostics go to stdout, one
// per line, "file:line:col: severity: message [LDL0xx]".  Exit status: 0
// clean, 1 when any error-severity diagnostic was reported (-strict: when
// anything at all was reported), 2 on usage or I/O problems.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ldl1/internal/analyze"
)

func vetMain(args []string, stdout, stderr io.Writer) int {
	fset := flag.NewFlagSet("vet", flag.ExitOnError)
	jsonOut := fset.Bool("json", false, "emit diagnostics as a JSON array")
	strict := fset.Bool("strict", false, "exit 1 on warnings too, not only errors")
	fset.SetOutput(stderr)
	fset.Usage = func() {
		fmt.Fprintln(stderr, "usage: ldl1 vet [-json] [-strict] file.ldl|file.go|dir|dir/... ...")
		fset.PrintDefaults()
	}
	fset.Parse(args)
	if fset.NArg() == 0 {
		fset.Usage()
		return 2
	}

	files, err := expandVetPaths(fset.Args())
	if err != nil {
		fmt.Fprintln(stderr, "ldl1 vet:", err)
		return 2
	}

	var diags []analyze.Diagnostic
	broken := false
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "ldl1 vet:", err)
			broken = true
			continue
		}
		if strings.HasSuffix(file, ".go") {
			ds, err := analyze.GoSource(file, data, analyze.Options{File: file})
			if err != nil {
				fmt.Fprintf(stderr, "ldl1 vet: %s: %v\n", file, err)
				broken = true
				continue
			}
			diags = append(diags, ds...)
			continue
		}
		diags = append(diags, analyze.Source(string(data), analyze.Options{File: file})...)
	}

	if *jsonOut {
		if diags == nil {
			diags = []analyze.Diagnostic{}
		}
		b, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "ldl1 vet:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprint(stdout, analyze.Format(diags))
	}

	switch {
	case broken:
		return 2
	case analyze.ErrorCount(diags) > 0, *strict && len(diags) > 0:
		return 1
	}
	return 0
}

// expandVetPaths resolves files, directories, and "dir/..." patterns into
// the list of .ldl and .go files to analyze, in deterministic order.
func expandVetPaths(paths []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(f string) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, p := range paths {
		p = strings.TrimSuffix(p, "/...")
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			if strings.HasSuffix(path, ".ldl") || strings.HasSuffix(path, ".go") {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// isTerminal reports whether w writes to an interactive terminal; the REPL
// colorizes severities only then.
func isTerminal(w any) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// renderDiag is Diagnostic.String with an optionally colorized severity.
func renderDiag(d analyze.Diagnostic, color bool) string {
	s := d.String()
	if !color {
		return s
	}
	switch d.Severity {
	case analyze.Error:
		return strings.Replace(s, ": error: ", ": \x1b[31merror\x1b[0m: ", 1)
	default:
		return strings.Replace(s, ": warning: ", ": \x1b[33mwarning\x1b[0m: ", 1)
	}
}
