package ldl1

import (
	"fmt"

	"ldl1/internal/analyze"
)

// Diagnostic is one static-analysis finding: a stable LDL0xx code, a
// severity, a 1-based source position, and a message, possibly with
// related positions (e.g. the rules inducing each edge of a
// non-admissibility witness cycle).  It marshals cleanly through
// encoding/json; see the `ldl1 vet -json` output.
type Diagnostic = analyze.Diagnostic

// Severity grades a Diagnostic.
type Severity = analyze.Severity

// Diagnostic severities.
const (
	// SeverityError marks conditions the engine rejects or mis-executes:
	// unsafe rules, inadmissible programs, floundering bodies, parse errors.
	SeverityError = analyze.Error
	// SeverityWarning marks legal but suspicious programs: singleton
	// variables, cartesian joins, possible non-termination, §2.3 grouping
	// pitfalls.
	SeverityWarning = analyze.Warning
)

// Vet statically analyzes LDL1 source text — rules, facts, and queries —
// without building an engine, returning every diagnostic in source order.
// Source that does not parse yields a single LDL000 diagnostic rather
// than an error.
func Vet(src string) []Diagnostic {
	return analyze.Source(src, analyze.Options{})
}

// Vet statically analyzes the engine's program as written (before the
// LDL1.5 expansion).  Predicates present in the extensional database count
// as defined, so facts added after New do not show up as undefined
// predicates.
//
// The result is memoized: the program is immutable after New, and the
// analysis depends on the store only through the set of extensional
// predicate NAMES, so the memo is keyed by that set and survives fact
// loads that introduce no new predicate.  Callers receive a fresh copy
// each time and may mutate it freely.
func (e *Engine) Vet() []Diagnostic {
	e.mu.RLock()
	key := e.edbKey()
	known := map[string]bool{}
	for _, pred := range e.edb.Preds() {
		known[pred] = true
	}
	e.mu.RUnlock()
	e.typeMu.Lock()
	if !e.vetMemoInit || e.vetMemoKey != key {
		e.vetMemo = analyze.Program(e.original, nil, analyze.Options{KnownPreds: known})
		e.vetMemoKey = key
		e.vetMemoInit = true
	}
	out := make([]Diagnostic, len(e.vetMemo))
	copy(out, e.vetMemo)
	e.typeMu.Unlock()
	return out
}

// VetError is returned by New/NewFromAST under WithStrict when the program
// has any diagnostic, error or warning.
type VetError struct {
	Diagnostics []Diagnostic
}

func (e *VetError) Error() string {
	if len(e.Diagnostics) == 1 {
		return fmt.Sprintf("vet: %s", e.Diagnostics[0])
	}
	return fmt.Sprintf("vet: %d diagnostics, first: %s", len(e.Diagnostics), e.Diagnostics[0])
}

// WithStrict makes New and NewFromAST fail with *VetError if the static
// analyzer reports anything at all — including warnings that the engine
// would happily evaluate.  The well-formedness and admissibility checks
// still run first and keep their usual error types; strict mode only adds
// the analyzer's stricter judgment on top.
func WithStrict() Option { return func(c *config) { c.strict = true } }
