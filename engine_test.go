package ldl1

import (
	"strings"
	"testing"

	"ldl1/internal/workload"
)

func TestQuickstart(t *testing.T) {
	eng, err := New(`
		ancestor(X, Y) <- parent(X, Y).
		ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
		parent(abe, bob). parent(bob, carl). parent(carl, dee).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Query("ancestor(abe, W)")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 {
		t.Fatalf("answers: %s", ans)
	}
	if got := ans.String(); !strings.Contains(got, "W = bob") || !strings.Contains(got, "W = dee") {
		t.Errorf("answers = %q", got)
	}
	m, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := m.Contains("ancestor(bob, dee)")
	if err != nil || !ok {
		t.Errorf("Contains = %v, %v", ok, err)
	}
	if facts := m.Facts("ancestor"); len(facts) != 6 {
		t.Errorf("ancestor facts = %v", facts)
	}
}

func TestGroundQueryYesNo(t *testing.T) {
	eng, err := New(`edge(a, b). path(X, Y) <- edge(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	yes, err := eng.Query("path(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if yes.Empty() || yes.String() != "yes" {
		t.Errorf("ground true query: %q", yes)
	}
	no, err := eng.Query("path(b, a)")
	if err != nil {
		t.Fatal(err)
	}
	if !no.Empty() || no.String() != "no" {
		t.Errorf("ground false query: %q", no)
	}
}

func TestEngineLDL15AutoRewrite(t *testing.T) {
	eng, err := New(`
		r(t1, s1, c1, mon). r(t1, s1, c2, tue). r(t2, s1, c3, wed).
		out(T, <S>, <D>) <- r(T, S, C, D).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Query("out(t1, S, D)")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatalf("answers = %s", ans)
	}
	// WithoutRewrite must reject the same program.
	if _, err := New(`
		r(t1, s1, c1, mon).
		out(T, <S>, <D>) <- r(T, S, C, D).
	`, WithoutRewrite()); err == nil {
		t.Error("WithoutRewrite should reject LDL1.5 heads")
	}
}

func TestEngineMagicMatchesBaseline(t *testing.T) {
	src := `
		anc(X, Y) <- par(X, Y).
		anc(X, Y) <- par(X, Z), anc(Z, Y).
	`
	mk := func(opts ...Option) *Engine {
		eng, err := New(src, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			eng.AddFact(NewFact("par", Sym(nodeName(i)), Sym(nodeName(i+1))))
		}
		return eng
	}
	base, err := mk().Query("anc(n47, W)")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	magic, err := mk(WithMagic(true), WithStats(&stats)).Query("anc(n47, W)")
	if err != nil {
		t.Fatal(err)
	}
	if base.String() != magic.String() {
		t.Errorf("magic differs:\n%s\nvs\n%s", magic, base)
	}
	if stats.Derived > 30 {
		t.Errorf("magic derived %d facts; expected a handful", stats.Derived)
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestEngineRejectsBadPrograms(t *testing.T) {
	cases := []string{
		"p(<X>) <- p(X). p(1).",                      // Russell (§2.3)
		"even(s(X)) <- int(X), not even(X). int(0).", // §1 even
		"p(X, Y) <- q(X).",                           // unsafe
		"p(X) <- q(X)",                               // syntax
	}
	for _, src := range cases {
		if _, err := New(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestEngineAddFactsAndDB(t *testing.T) {
	eng, err := New(`anc(X, Y) <- parent(X, Y). anc(X, Y) <- parent(X, Z), anc(Z, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddFacts("parent(a, b). parent(b, c)."); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddFacts("bad(X) <- parent(X, X)."); err == nil {
		t.Error("AddFacts must reject rules")
	}
	eng.AddDB(workload.ParentChain(5))
	m, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := m.Contains("anc(n0, n5)")
	if !ok {
		t.Error("workload facts not visible")
	}
	ok, _ = m.Contains("anc(a, c)")
	if !ok {
		t.Error("text facts not visible")
	}
	// Model memoization invalidates on new facts.
	eng.AddFacts("parent(c, d).")
	m2, _ := eng.Run()
	if ok, _ := m2.Contains("anc(a, d)"); !ok {
		t.Error("model not recomputed after AddFacts")
	}
}

func TestEngineStrataAndPositive(t *testing.T) {
	eng, err := New(`
		a(X) <- e(X).
		b(X) <- e(X), not a(X).
		e(1).
	`)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Strata()
	if !(st["a"] < st["b"]) {
		t.Errorf("strata = %v", st)
	}
	if eng.IsPositive() {
		t.Error("program with negation reported positive")
	}
	eng2, _ := New("p(X) <- q(X). q(1).")
	if !eng2.IsPositive() {
		t.Error("positive program misreported")
	}
}

func TestEngineExplainQuery(t *testing.T) {
	eng, err := New(`
		anc(X, Y) <- par(X, Y).
		anc(X, Y) <- par(X, Z), anc(Z, Y).
		par(a, b).
	`)
	if err != nil {
		t.Fatal(err)
	}
	adorned, rewritten, plan, err := eng.ExplainQuery("anc(a, W)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(adorned, "anc^bf") {
		t.Errorf("adorned = %s", adorned)
	}
	if !strings.Contains(rewritten, "magic__anc__bf(a).") {
		t.Errorf("rewritten = %s", rewritten)
	}
	if !strings.Contains(plan, "par(X, Y)") {
		t.Errorf("plan = %s", plan)
	}
}

func TestTermConstructors(t *testing.T) {
	s := SetOf(Num(2), Num(1), Num(2))
	if s.String() != "{1, 2}" {
		t.Errorf("SetOf = %s", s)
	}
	if !Equal(MustParseTerm("{1, 2}"), s) {
		t.Error("ParseTerm and SetOf disagree")
	}
	f := Func("f", Sym("a"), Variable("X"), Text("hi"), EmptySet)
	if f.String() != `f(a, X, "hi", {})` {
		t.Errorf("Func = %s", f)
	}
	if Compare(Num(1), Num(2)) >= 0 {
		t.Error("Compare order wrong")
	}
}

func TestPartCostEndToEnd(t *testing.T) {
	eng, err := New(`
		part(P, <S>) <- p(P, S).
		tc({X}, C) <- q(X, C).
		tc({X}, C) <- part(X, S), tc(S, C).
		tc(S, C) <- partition(S, S1, S2), tc(S1, C1), tc(S2, C2), C = C1 + C2.
		result(X, C) <- tc(S, C), member(X, S), S = {X}.
	`)
	if err != nil {
		t.Fatal(err)
	}
	eng.AddDB(workload.BOM(2, 2))
	ans, err := eng.Query("result(1, C)")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatalf("root cost answers = %s", ans)
	}
	// Leaves are parts 4..7 with cost 10+id; root cost = sum = 62.
	if got := ans.String(); got != "C = 62" {
		t.Errorf("root cost = %q", got)
	}
}

func TestExplain(t *testing.T) {
	eng, err := New(`
		ancestor(X, Y) <- parent(X, Y).
		ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
		parent(abe, bob). parent(bob, carl).
	`)
	if err != nil {
		t.Fatal(err)
	}
	why, err := eng.Explain("ancestor(abe, carl)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ancestor(abe, carl)", "parent(abe, bob)", "[fact]"} {
		if !strings.Contains(why, want) {
			t.Errorf("Explain missing %q:\n%s", want, why)
		}
	}
	if _, err := eng.Explain("ancestor(carl, abe)"); err == nil {
		t.Error("explaining an absent fact should fail")
	}
	if _, err := eng.Explain("not a fact"); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestWithLimit(t *testing.T) {
	eng, err := New(`
		nat(z).
		nat(s(X)) <- nat(X).
	`, WithLimit(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("diverging program should hit the derivation limit")
	}
}

func TestSupplementaryMagicOption(t *testing.T) {
	src := `
		anc(X, Y) <- par(X, Y).
		anc(X, Y) <- par(X, Z), anc(Z, Y).
		par(a, b). par(b, c). par(c, d).
	`
	base, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := New(src, WithSupplementaryMagic())
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Query("anc(a, W)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sup.Query("anc(a, W)")
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Errorf("supplementary magic differs:\n%s\nvs\n%s", got, want)
	}
}
