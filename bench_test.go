package ldl1

// One benchmark family per experiment of DESIGN.md / EXPERIMENTS.md.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers depend on the host; the paper's claims are about
// *shape* — who wins and how the gap scales — which the relative figures
// here reproduce (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"ldl1/internal/ast"
	"ldl1/internal/eval"
	"ldl1/internal/lps"
	"ldl1/internal/magic"
	"ldl1/internal/model"
	"ldl1/internal/parser"
	"ldl1/internal/rewrite"
	"ldl1/internal/store"
	"ldl1/internal/term"
	"ldl1/internal/workload"
)

const benchAncestorRules = `
	ancestor(X, Y) <- parent(X, Y).
	ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
`

func benchEval(b *testing.B, src string, db *store.DB, strat eval.Strategy) {
	b.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Eval(p, db, eval.Options{Strategy: strat}); err != nil {
			b.Fatal(err)
		}
	}
}

// E1: §1 ancestor, naive vs semi-naive over chains and random DAGs.
func BenchmarkE01AncestorNaive(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			benchEval(b, benchAncestorRules, workload.ParentChain(n), eval.Naive)
		})
	}
}

func BenchmarkE01AncestorSemiNaive(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			benchEval(b, benchAncestorRules, workload.ParentChain(n), eval.SemiNaive)
		})
	}
	for _, n := range []int{128, 512} {
		b.Run(fmt.Sprintf("dag-%d", n), func(b *testing.B) {
			benchEval(b, benchAncestorRules, workload.RandomDAG(n, 2, 1), eval.SemiNaive)
		})
	}
}

// E2: §1 excl_ancestor with stratified negation.
func BenchmarkE02ExclAncestor(b *testing.B) {
	src := benchAncestorRules + `
		excl_ancestor(X, Y, Z) <- ancestor(X, Y), not ancestor(X, Z), person(Z).
	`
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			benchEval(b, src, workload.Persons(workload.ParentChain(n), n), eval.SemiNaive)
		})
	}
}

// E4: §1 book_deal set enumeration.
func BenchmarkE04BookDeal(b *testing.B) {
	src := `book_deal({X, Y, Z}) <- book(X, Px), book(Y, Py), book(Z, Pz), Px + Py + Pz < 100.`
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("books-%d", n), func(b *testing.B) {
			benchEval(b, src, workload.Books(n, 7), eval.SemiNaive)
		})
	}
}

// E5: §1 supplier-parts grouping.
func BenchmarkE05Grouping(b *testing.B) {
	src := `supplies(S, <P>) <- sp(S, P).`
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("suppliers-%d", n), func(b *testing.B) {
			benchEval(b, src, workload.SupplierParts(n, 8, 11), eval.SemiNaive)
		})
	}
}

const benchPartCost = `
	part(P, <S>) <- p(P, S).
	tc({X}, C) <- q(X, C).
	tc({X}, C) <- part(X, S), tc(S, C).
	tc(S, C) <- partition(S, S1, S2), tc(S1, C1), tc(S2, C2), C = C1 + C2.
	result(X, C) <- tc(S, C), member(X, S), S = {X}.
`

// E6: §1 part-cost (grouping + partition + set recursion).
func BenchmarkE06PartCost(b *testing.B) {
	for _, cfg := range [][2]int{{1, 4}, {2, 2}, {1, 6}} {
		b.Run(fmt.Sprintf("depth%d-fanout%d", cfg[0], cfg[1]), func(b *testing.B) {
			benchEval(b, benchPartCost, workload.BOM(cfg[0], cfg[1]), eval.SemiNaive)
		})
	}
}

// E7-E9: §2 model checking (grouping truth definition + dominance).
func BenchmarkE07ModelCheck(b *testing.B) {
	p := parser.MustParseProgram(`
		q(X) <- p(X), h(X).
		p(<X>) <- r(X).
		r(1).
		h({1}).
	`)
	m := store.NewDB()
	for _, r := range parser.MustParseProgram("r(1). h({1}). p({1}). q({1}).").Rules {
		m.Insert(term.NewFact(r.Head.Pred, r.Head.Args...))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := model.IsModel(p, m)
		if err != nil || !ok {
			b.Fatalf("IsModel = %v, %v", ok, err)
		}
	}
}

// E10: Theorem 1 — evaluate and verify the result is a model.
func BenchmarkE10EvalAndVerify(b *testing.B) {
	src := benchAncestorRules
	p := parser.MustParseProgram(src)
	db := workload.ParentChain(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := eval.Eval(p, db, eval.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ok, err := model.IsModel(p, m)
		if err != nil || !ok {
			b.Fatal("result is not a model")
		}
	}
}

// E11: §3.3 negation elimination — original vs positive program.
func BenchmarkE11NegElim(b *testing.B) {
	src := benchAncestorRules + `
		excl_ancestor(X, Y, Z) <- ancestor(X, Y), not ancestor(X, Z), person(Z).
	`
	p := parser.MustParseProgram(src)
	pos, err := rewrite.EliminateNegation(p)
	if err != nil {
		b.Fatal(err)
	}
	db := workload.Persons(workload.ParentChain(16), 16)
	b.Run("original", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(p, db, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("positive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(pos, db, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E12: §4.1 body patterns (rewrite + evaluate).
func BenchmarkE12BodyPatterns(b *testing.B) {
	p := parser.MustParseProgram(`
		pa({{1, 2}, {3}, {4, 5}}). pa({{6}, {7, 8}}).
		oka(X) <- pa(<<X>>).
	`)
	rp, err := rewrite.Rewrite(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Eval(rp, store.NewDB(), eval.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E13: §4.2 complex head terms over teacher schedules.
func BenchmarkE13HeadTerms(b *testing.B) {
	for _, h := range []struct{ name, rule string }{
		{"distribute", "out(T, <S>, <D>) <- r(T, S, C, D)."},
		{"nested", "out(T, <h(S, <D>)>) <- r(T, S, C, D)."},
	} {
		b.Run(h.name, func(b *testing.B) {
			p := parser.MustParseProgram(h.rule)
			rp, err := rewrite.Rewrite(p)
			if err != nil {
				b.Fatal(err)
			}
			db := workload.TeacherSchedule(8, 6, 4, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(rp, db, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E14: §5 LPS — direct evaluation vs the Theorem 3 translation.
func BenchmarkE14LPS(b *testing.B) {
	prog := &lps.Program{Rules: []lps.Rule{{
		Head:    ast.NewLit("disj", term.Var("X"), term.Var("Y")),
		Regular: []ast.Literal{ast.NewLit("pair", term.Var("X"), term.Var("Y"))},
		Quants:  []lps.Quant{{Elem: "Ex", Set: "X"}, {Elem: "Ey", Set: "Y"}},
		Body:    []ast.Literal{ast.NewLit("/=", term.Var("Ex"), term.Var("Ey"))},
	}}}
	db := workload.SetPairs(128, 6, 9)
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lps.Eval(prog, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("translated", func(b *testing.B) {
		ldlProg, err := lps.Translate(prog)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(ldlProg, db, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

const benchYoung = `
	a(X, Y) <- p(X, Y).
	a(X, Y) <- a(X, Z), a(Z, Y).
	sg(X, Y) <- siblings(X, Y).
	sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
	hasdesc(X) <- a(X, Z).
	young(X, <Y>) <- sg(X, Y), not hasdesc(X).
`

// E15: §6 magic sets on a selective query, against the full-evaluation
// baseline, across database sizes.
func BenchmarkE15MagicOn(b *testing.B) {
	p := parser.MustParseProgram(benchYoung)
	q, _ := parser.ParseQuery("young(n16, S)")
	for _, fams := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("families-%d", fams), func(b *testing.B) {
			db := workload.FamilyForest(fams, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := magic.Answer(p, db, q, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE15MagicSupplementary(b *testing.B) {
	p := parser.MustParseProgram(benchYoung)
	q, _ := parser.ParseQuery("young(n16, S)")
	for _, fams := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("families-%d", fams), func(b *testing.B) {
			db := workload.FamilyForest(fams, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := magic.AnswerVariant(p, db, q, eval.Options{}, magic.Supplementary); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE15MagicOff(b *testing.B) {
	p := parser.MustParseProgram(benchYoung)
	q, _ := parser.ParseQuery("young(n16, S)")
	for _, fams := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("families-%d", fams), func(b *testing.B) {
			db := workload.FamilyForest(fams, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := magic.AnswerWithout(p, db, q, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E16: ablations — indexing on/off under semi-naive evaluation.
func BenchmarkE16Indexing(b *testing.B) {
	p := parser.MustParseProgram(benchAncestorRules)
	for _, idx := range []bool{true, false} {
		name := "indexes-on"
		if !idx {
			name = "indexes-off"
		}
		b.Run(name, func(b *testing.B) {
			db := workload.RandomDAG(128, 2, 5)
			db.UseIndexes = idx
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(p, db, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E16p: parallel round evaluation vs sequential on a wide workload.
func BenchmarkE16Parallel(b *testing.B) {
	p := parser.MustParseProgram(`
		t(X, Y) <- e(X, Y).
		t(X, Y) <- e(X, Z), t(Z, Y).
		s(X, Y) <- f(X, Y).
		s(X, Y) <- f(X, Z), s(Z, Y).
		u(X, Y) <- t(X, Y), s(X, Y).
	`)
	db := workload.RandomDAG(200, 2, 5)
	for _, f := range workload.RandomDAG(200, 2, 6).Facts() {
		db.Insert(term.NewFact("f", f.Args...))
	}
	for _, f := range db.Rel("parent").All() {
		db.Insert(term.NewFact("e", f.Args...))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(p, db, eval.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E16b: set interning/canonicalization cost on set-heavy workloads.
func BenchmarkE16SetOps(b *testing.B) {
	sets := make([]*term.Set, 64)
	for i := range sets {
		elems := make([]term.Term, 0, 16)
		for j := 0; j < 16; j++ {
			elems = append(elems, term.Int(int64((i*7+j*13)%97)))
		}
		sets[i] = term.NewSet(elems...)
	}
	b.Run("union", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sets[i%64].Union(sets[(i+1)%64])
		}
	})
	b.Run("subset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sets[i%64].SubsetOf(sets[(i+1)%64])
		}
	})
	b.Run("key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := term.NewSet(sets[i%64].Elems()...)
			_ = s.Key()
		}
	})
}
