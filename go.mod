module ldl1

go 1.22
