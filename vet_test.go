package ldl1

import (
	"errors"
	"strings"
	"testing"
)

func hasCode(ds []Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestVet(t *testing.T) {
	ds := Vet("d(1).\ne(2).\npair(X, Y) <- d(X), e(Y).\n")
	if !hasCode(ds, "LDL108") {
		t.Errorf("cartesian join not reported: %v", ds)
	}
	for _, d := range ds {
		if d.Severity == SeverityError {
			t.Errorf("legal program got an error diagnostic: %v", d)
		}
	}

	ds = Vet("big(X) <- d(Y), Y < X.\nd(1).\n")
	if !hasCode(ds, "LDL001") {
		t.Errorf("unsafe head variable not reported: %v", ds)
	}

	ds = Vet("p(X <- q(X).")
	if !hasCode(ds, "LDL000") {
		t.Errorf("syntax error should become an LDL000 diagnostic: %v", ds)
	}

	if ds := Vet("d(1).\np(X) <- d(X).\n"); len(ds) != 0 {
		t.Errorf("clean program got diagnostics: %v", ds)
	}
}

func TestEngineVet(t *testing.T) {
	eng, err := New("d(1).\np(X) <- edb(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if ds := eng.Vet(); !hasCode(ds, "LDL102") {
		t.Errorf("undefined predicate not reported before facts arrive: %v", ds)
	}
	if err := eng.AddFacts("edb(7)."); err != nil {
		t.Fatal(err)
	}
	if ds := eng.Vet(); hasCode(ds, "LDL102") {
		t.Errorf("extensional predicate still reported undefined: %v", ds)
	}
}

func TestWithStrict(t *testing.T) {
	// A warning (cartesian join) is enough to fail strict construction.
	_, err := New("d(1).\ne(2).\npair(X, Y) <- d(X), e(Y).\n", WithStrict())
	var ve *VetError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VetError, got %v", err)
	}
	if len(ve.Diagnostics) == 0 || !strings.Contains(ve.Error(), "LDL108") {
		t.Errorf("VetError should carry the diagnostics: %v", ve)
	}

	if _, err := New("d(1).\np(X) <- d(X).\n", WithStrict()); err != nil {
		t.Errorf("clean program rejected under strict: %v", err)
	}

	// Errors the engine itself detects keep their established types even
	// under strict mode.
	_, err = New("p(X, <Y>) <- q(X, Y).\nq(X, Y) <- p(X, Y).\nq(1, 2).", WithStrict())
	if err == nil || errors.As(err, &ve) {
		t.Errorf("admissibility failure should not be converted to VetError: %v", err)
	}
}
