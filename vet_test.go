package ldl1

import (
	"errors"
	"strings"
	"testing"
)

func hasCode(ds []Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestVet(t *testing.T) {
	ds := Vet("d(1).\ne(2).\npair(X, Y) <- d(X), e(Y).\n")
	if !hasCode(ds, "LDL108") {
		t.Errorf("cartesian join not reported: %v", ds)
	}
	for _, d := range ds {
		if d.Severity == SeverityError {
			t.Errorf("legal program got an error diagnostic: %v", d)
		}
	}

	ds = Vet("big(X) <- d(Y), Y < X.\nd(1).\n")
	if !hasCode(ds, "LDL001") {
		t.Errorf("unsafe head variable not reported: %v", ds)
	}

	ds = Vet("p(X <- q(X).")
	if !hasCode(ds, "LDL000") {
		t.Errorf("syntax error should become an LDL000 diagnostic: %v", ds)
	}

	if ds := Vet("d(1).\np(X) <- d(X).\n"); len(ds) != 0 {
		t.Errorf("clean program got diagnostics: %v", ds)
	}
}

func TestEngineVet(t *testing.T) {
	eng, err := New("d(1).\np(X) <- edb(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if ds := eng.Vet(); !hasCode(ds, "LDL102") {
		t.Errorf("undefined predicate not reported before facts arrive: %v", ds)
	}
	if err := eng.AddFacts("edb(7)."); err != nil {
		t.Fatal(err)
	}
	if ds := eng.Vet(); hasCode(ds, "LDL102") {
		t.Errorf("extensional predicate still reported undefined: %v", ds)
	}
}

func TestEngineVetMemoized(t *testing.T) {
	eng, err := New("d(1).\np(X) <- edb(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	first := eng.Vet()
	if len(first) == 0 {
		t.Fatal("expected diagnostics (undefined edb/1)")
	}
	// Callers own the returned slice: mutating it must not corrupt the memo.
	first[0].Code = "MUTATED"
	second := eng.Vet()
	if hasCode(second, "MUTATED") {
		t.Error("memoized diagnostics were corrupted by caller mutation")
	}
	// Loading facts invalidates by predicate set, not by fact count: the
	// memo recomputes when edb/1 appears and the LDL102 disappears, then
	// stays stable across further loads of the same predicate.
	if err := eng.AddFacts("edb(7)."); err != nil {
		t.Fatal(err)
	}
	if ds := eng.Vet(); hasCode(ds, "LDL102") {
		t.Errorf("memo not invalidated by a new extensional predicate: %v", ds)
	}
	if err := eng.AddFacts("edb(8)."); err != nil {
		t.Fatal(err)
	}
	a, b := eng.Vet(), eng.Vet()
	if len(a) != len(b) {
		t.Errorf("repeated Vet disagrees: %v vs %v", a, b)
	}
}

func TestPrepareStrictVetsQuery(t *testing.T) {
	const prog = "num(1).\nnum(2).\n"
	const q = "?- num(X), X = a."

	// Reference: direct Vet of the program with the query appended.
	direct := Vet(prog + q + "\n")
	var want *Diagnostic
	for i, d := range direct {
		if d.Code == "LDL200" {
			want = &direct[i]
			break
		}
	}
	if want == nil {
		t.Fatalf("direct vet misses the type clash: %v", direct)
	}

	eng, err := New(prog, WithStrict())
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Prepare(q)
	var ve *VetError
	if !errors.As(err, &ve) {
		t.Fatalf("strict Prepare should fail with *VetError, got %v", err)
	}
	var got *Diagnostic
	for i, d := range ve.Diagnostics {
		if d.Code == "LDL200" {
			got = &ve.Diagnostics[i]
			break
		}
	}
	if got == nil {
		t.Fatalf("strict Prepare misses the type clash: %v", ve.Diagnostics)
	}
	// Same code and position as direct Vet, modulo the two program lines
	// that precede the query in the direct source.
	if got.Pos.Col != want.Pos.Col || got.Pos.Line != want.Pos.Line-2 {
		t.Errorf("position mismatch: prepared %v vs direct %v", got.Pos, want.Pos)
	}

	// Well-typed queries still prepare, and non-strict engines accept the
	// ill-typed one (it just returns no answers).
	if _, err := eng.Prepare("?- num(X), X > 1."); err != nil {
		t.Errorf("strict Prepare rejected a well-typed query: %v", err)
	}
	plain, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Prepare(q); err != nil {
		t.Errorf("non-strict Prepare rejected the query: %v", err)
	}
}

func TestWithStrict(t *testing.T) {
	// A warning (cartesian join) is enough to fail strict construction.
	_, err := New("d(1).\ne(2).\npair(X, Y) <- d(X), e(Y).\n", WithStrict())
	var ve *VetError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VetError, got %v", err)
	}
	if len(ve.Diagnostics) == 0 || !strings.Contains(ve.Error(), "LDL108") {
		t.Errorf("VetError should carry the diagnostics: %v", ve)
	}

	if _, err := New("d(1).\np(X) <- d(X).\n", WithStrict()); err != nil {
		t.Errorf("clean program rejected under strict: %v", err)
	}

	// Errors the engine itself detects keep their established types even
	// under strict mode.
	_, err = New("p(X, <Y>) <- q(X, Y).\nq(X, Y) <- p(X, Y).\nq(1, 2).", WithStrict())
	if err == nil || errors.As(err, &ve) {
		t.Errorf("admissibility failure should not be converted to VetError: %v", err)
	}
}
