package ldl1

import (
	"context"
	"errors"
	"testing"
	"time"
)

const divergentSrc = `
	nat(z).
	nat(s(X)) <- nat(X).
`

const ancestorProg = `
	ancestor(X, Y) <- parent(X, Y).
	ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
	parent(a, b). parent(b, c). parent(c, d).
`

func TestNewParseError(t *testing.T) {
	_, err := New(`p(X <- q(X).`)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line == 0 {
		t.Errorf("ParseError carries no line: %+v", pe)
	}
}

func TestWithDeadline(t *testing.T) {
	eng, err := New(divergentSrc, WithDeadline(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	// The sentinel unwraps to the stdlib one.
	_, err = eng.Run()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to context.DeadlineExceeded: %v", err)
	}
	// A terminating program under the same deadline succeeds.
	ok, err := New(ancestorProg, WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ok.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Facts("ancestor")); got != 6 {
		t.Errorf("ancestor = %d, want 6", got)
	}
}

func TestRunCtxCanceled(t *testing.T) {
	eng, err := New(ancestorProg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunCtx(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunCtx: want ErrCanceled, got %v", err)
	}
	if _, err := eng.QueryCtx(ctx, "ancestor(a, X)"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("QueryCtx: want ErrCanceled, got %v", err)
	}
	// The engine is still usable afterwards.
	ans, err := eng.Query("ancestor(a, X)")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 {
		t.Errorf("answers after canceled run = %d, want 3", ans.Len())
	}
}

func TestQueryCtxCanceledWithMagic(t *testing.T) {
	eng, err := New(ancestorProg, WithMagic(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryCtx(ctx, "ancestor(a, X)"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("magic QueryCtx: want ErrCanceled, got %v", err)
	}
	ans, err := eng.Query("ancestor(a, X)")
	if err != nil || ans.Len() != 3 {
		t.Fatalf("magic query after cancel: ans=%v err=%v", ans, err)
	}
}

func TestWithMemBudgetEngine(t *testing.T) {
	eng, err := New(divergentSrc, WithMemBudget(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	var me *MemBudgetError
	if !errors.As(err, &me) {
		t.Fatalf("want *MemBudgetError, got %v", err)
	}
	if me.Budget != 1<<12 {
		t.Errorf("budget = %d", me.Budget)
	}
}

func TestWithLimitEngine(t *testing.T) {
	eng, err := New(divergentSrc, WithLimit(50))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Limit != 50 {
		t.Errorf("limit = %d", le.Limit)
	}
}

// TestMaterializedCtxAndLimit covers the incremental view: a canceled
// context and a limit breach both roll the view back to its pre-call state,
// and the view keeps working afterwards.
func TestMaterializedCtxAndLimit(t *testing.T) {
	eng, err := New(ancestorProg, WithLimit(64))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := eng.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	before := mat.Model().Len()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mat.AssertCtx(ctx, "parent(d, e)."); !errors.Is(err, ErrCanceled) {
		t.Fatalf("AssertCtx: want ErrCanceled, got %v", err)
	}
	if got := mat.Model().Len(); got != before {
		t.Fatalf("canceled AssertCtx changed the model: %d -> %d", before, got)
	}

	// The same assertion on a live context succeeds and maintains the view.
	res, err := mat.Assert("parent(d, e).")
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted == 0 {
		t.Error("assert after cancel inserted nothing")
	}
	ans, err := mat.Query("ancestor(a, X)")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 4 {
		t.Errorf("ancestor(a, X) answers = %d, want 4", ans.Len())
	}

	// WithLimit bounds each transaction: extending the chain by ten edges
	// in one Assert derives over a hundred facts, breaking the 64-fact
	// budget and rolling back.
	chain := "parent(e, f). parent(f, g). parent(g, h). parent(h, i). parent(i, j). parent(j, k). parent(k, l). parent(l, m). parent(m, n). parent(n, o)."
	pre := mat.Model().Len()
	_, err = mat.Assert(chain)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("breaching Assert: want *LimitError, got %v", err)
	}
	if got := mat.Model().Len(); got != pre {
		t.Fatalf("breaching Assert changed the model: %d -> %d", pre, got)
	}
}
