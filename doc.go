// Package ldl1 is a deductive database engine implementing LDL1, the logic
// database language with finite sets and stratified negation of
//
//	Beeri, Naqvi, Ramakrishnan, Shmueli, Tsur:
//	"Sets and Negation in a Logic Database Language (LDL1)", PODS 1987.
//
// The engine provides:
//
//   - the full LDL1 term universe U: constants, uninterpreted function
//     terms, and canonical finite sets closed under nesting (§2.2);
//   - set enumeration ({a,b,c}, scons) and set grouping (<X> in rule
//     heads), with the built-ins member/2, union/3, partition/3 (§1, §2);
//   - the admissibility (layering) check of §3.1 and bottom-up naive and
//     semi-naive evaluation of the standard minimal model (§3.2, Theorem 1);
//   - the LDL1.5 extensions of §4 — complex head terms and body set
//     patterns — compiled away by source rewriting, and the §3.3
//     elimination of negation through grouping;
//   - the LPS fragment of §5 with the Theorem 3 translation; and
//   - Generalized Magic Sets query compilation extended to sets and
//     negation (§6).
//
// # Quick start
//
//	eng, err := ldl1.New(`
//		ancestor(X, Y) <- parent(X, Y).
//		ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
//		parent(abe, bob). parent(bob, carl).
//	`)
//	if err != nil { ... }
//	ans, err := eng.Query("ancestor(abe, W)")
//	for _, row := range ans.Rows { fmt.Println(row) }
//
// Concrete syntax: rules are written head <- body with a terminating
// period; variables start upper-case, constants lower-case; {1, 2} is an
// enumerated set, <X> a grouping argument, and not/~/¬ negate a body
// literal.  Comments run from % or # to end of line.
package ldl1
